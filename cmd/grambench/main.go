// Command grambench reproduces the Section 4.2 middleware analysis:
// it measures (a) raw SOAP-style marshalling throughput of the [20]
// benchmark payload (30,000 {int,int,double} records, >450 KB),
// (b) the sustained capacity of the middleware stack in each service
// mode via open-loop saturation, and (c) the stack's overload response
// across a swept request rate × redundancy factor r — the regime where
// the paper's r < iat * rate bound binds.
//
// All measurements are open-loop (see internal/loadgen): arrivals fire
// on a target-rate schedule regardless of how the stack is coping, so
// offered load keeps climbing past the knee instead of a closed loop
// politely slowing down with the server. SIGINT drains in-flight
// requests and flushes whatever partial results exist.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"redreq/internal/loadgen"
	"redreq/internal/middleware"
	"redreq/internal/pbsd"
	"redreq/internal/report"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses argv, runs the
// measurements, and returns the process exit code. Canceling ctx
// (SIGINT in main) stops the current measurement gracefully and
// flushes partial results.
func run(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("grambench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dur       = fs.Duration("dur", 2*time.Second, "measurement window per point")
		iat       = fs.Float64("iat", 5.01, "mean job interarrival time in seconds for the bound")
		items     = fs.Int("items", 30000, "records in the marshalling payload")
		probeRate = fs.Float64("proberate", 2000, "offered rate for the capacity probes (must exceed capacity)")
		rates     = fs.String("rates", "5,20,80", "comma-separated offered rates (pairs/s) for the overload sweep")
		redund    = fs.String("r", "1,2,4", "comma-separated redundancy factors for the overload sweep")
		arrivals  = fs.String("arrivals", "poisson", "arrival law: poisson|uniform")
		inflight  = fs.Int("inflight", 256, "max in-flight logical requests (arrivals past it are dropped)")
		deadline  = fs.Duration("deadline", 2*time.Second, "per-request deadline")
		durable   = fs.Bool("durable", false, "overload sweep: durable per-transaction state")
		security  = fs.Bool("security", false, "overload sweep: message-level security")
		batch     = fs.Bool("batch", false, "overload sweep: batch each logical request's r copies into single SubmitBatch/CancelBatch envelopes over a pooled pre-warmed client")
	)
	if err := fs.Parse(argv); err != nil {
		return 2 // the flag set already printed the error and usage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "grambench: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	law, err := loadgen.ParseArrival(*arrivals)
	if err != nil {
		fmt.Fprintf(stderr, "grambench: %v\n", err)
		return 2
	}
	sweepRates, err := loadgen.ParseRates(*rates)
	if err != nil {
		fmt.Fprintf(stderr, "grambench: %v\n", err)
		return 2
	}
	rs, err := parseRedundancies(*redund)
	if err != nil {
		fmt.Fprintf(stderr, "grambench: %v\n", err)
		return 2
	}

	// (a) Raw marshalling, the gSOAP-style measurement of [20].
	payload := middleware.NewTripleArray(*items)
	raw, err := middleware.MarshalTriples(payload)
	if err != nil {
		fmt.Fprintf(stderr, "grambench: %v\n", err)
		return 1
	}
	n := 0
	start := time.Now()
	for time.Since(start) < *dur && ctx.Err() == nil {
		b, err := middleware.MarshalTriples(payload)
		if err != nil {
			fmt.Fprintf(stderr, "grambench: %v\n", err)
			return 1
		}
		if _, err := middleware.UnmarshalTriples(b); err != nil {
			fmt.Fprintf(stderr, "grambench: %v\n", err)
			return 1
		}
		n++
	}
	marshalRate := float64(n) / time.Since(start).Seconds()
	fmt.Fprintf(stdout, "raw marshal+unmarshal of %d-record payload (%d KB): %.1f round-trips/s\n",
		*items, len(raw)/1024, marshalRate)
	if interrupted(ctx, stdout) {
		return 0
	}

	gen := genConfig{law: law, dur: *dur, inflight: *inflight, deadline: *deadline}

	// (b) Capacity per service mode: offer far more than the stack can
	// take and read its capacity off the goodput — the open-loop
	// equivalent of the old closed-loop saturation.
	t := report.NewTable("middleware capacity (open-loop saturation, submit+cancel pairs)",
		"mode", "pairs/s", "p95 s", "loss %", "bound r (iat)")
	modes := []struct {
		name              string
		durable, security bool
	}{
		{"in-memory", false, false},
		{"durable (state file + fsync per tx)", true, false},
		{"full GRAM-like (durable + message security)", true, true},
	}
	for _, m := range modes {
		res, err := measure(ctx, m.durable, m.security, *probeRate, 1, gen)
		if err != nil {
			fmt.Fprintf(stderr, "grambench: %v\n", err)
			return 1
		}
		t.AddRow(m.name, report.Cell(res.Goodput, 1), report.Cell(res.P95, 3),
			report.Cell(100*res.ErrorRate(), 1),
			fmt.Sprintf("%d", pbsd.LoadBound(res.Goodput, *iat)))
		if res.Interrupted {
			break
		}
	}
	if err := t.Render(stdout); err != nil {
		fmt.Fprintf(stderr, "grambench: %v\n", err)
		return 1
	}
	if interrupted(ctx, stdout) {
		return 0
	}

	// (c) Overload response of one chosen mode: offered rate × r. Every
	// copy is a full independent transaction — the redundant work the
	// paper indicts — so r multiplies the load on the stack.
	mode := "in-memory"
	if *durable && *security {
		mode = "full GRAM-like"
	} else if *durable {
		mode = "durable"
	} else if *security {
		mode = "security"
	}
	if *batch {
		mode += ", batched"
	}
	ot := report.NewTable(fmt.Sprintf("overload response (%s mode, open-loop rate × redundancy)", mode),
		"rate", "r", "offered/s", "goodput/s", "p50 s", "p95 s", "p99 s", "loss %", "errors")
	stopped := false
	gen.batch = *batch
sweep:
	for _, rate := range sweepRates {
		for _, r := range rs {
			res, err := measure(ctx, *durable, *security, rate, r, gen)
			if err != nil {
				fmt.Fprintf(stderr, "grambench: %v\n", err)
				return 1
			}
			ot.AddRow(report.Cell(rate, 0), fmt.Sprintf("%d", r),
				report.Cell(res.OfferedRate, 1), report.Cell(res.Goodput, 1),
				report.Cell(res.P50, 3), report.Cell(res.P95, 3), report.Cell(res.P99, 3),
				report.Cell(100*res.ErrorRate(), 1), res.ErrorSummary())
			if res.Interrupted {
				stopped = true
				break sweep
			}
		}
	}
	if err := ot.Render(stdout); err != nil {
		fmt.Fprintf(stderr, "grambench: %v\n", err)
		return 1
	}
	if stopped && interrupted(ctx, stdout) {
		return 0
	}
	fmt.Fprintf(stdout, "\nThe paper measures ~0.5 submit+cancel pairs/s for GT4 WS-GRAM, giving r < 3;\n")
	fmt.Fprintf(stdout, "the shape to check is marshalling >> middleware transactions, the derived bound\n")
	fmt.Fprintf(stdout, "r < iat * pair-rate for whichever layer is slowest, and goodput collapsing as\n")
	fmt.Fprintf(stdout, "r multiplies the offered rate past the capacity knee.\n")
	return 0
}

// genConfig carries the loadgen knobs shared by every measurement.
type genConfig struct {
	law      loadgen.Arrival
	dur      time.Duration
	inflight int
	deadline time.Duration
	// batch collapses each logical request's r copies into one
	// SubmitBatch plus one CancelBatch envelope on a pooled pre-warmed
	// client, instead of r independent submit+cancel round trips.
	batch bool
}

// measure drives one open-loop point — rate logical pairs/s, r copies
// each — through a fresh middleware stack in the given mode.
func measure(ctx context.Context, durable, security bool, rate float64, r int, gen genConfig) (loadgen.Result, error) {
	backend, err := pbsd.New(pbsd.Config{Nodes: 16})
	if err != nil {
		return loadgen.Result{}, err
	}
	defer backend.Close()
	stateDir := ""
	if durable {
		stateDir, err = os.MkdirTemp("", "grambench-state")
		if err != nil {
			return loadgen.Result{}, err
		}
		defer os.RemoveAll(stateDir)
	}
	svc, err := middleware.NewService(middleware.ServiceConfig{
		Durable:  durable,
		Security: security,
		StateDir: stateDir,
		Backend:  backend,
	})
	if err != nil {
		return loadgen.Result{}, err
	}
	defer svc.Close()
	ep, err := middleware.Start(svc, "127.0.0.1:0")
	if err != nil {
		return loadgen.Result{}, err
	}
	defer ep.Close()

	cl := middleware.NewClientOptions(ep.URL, "grambench", middleware.ClientOptions{
		Timeout: gen.deadline,
	})
	cfg := loadgen.Config{
		Rate:        rate,
		Arrivals:    gen.law,
		Duration:    gen.dur,
		Redundancy:  r,
		MaxInFlight: gen.inflight,
		Deadline:    gen.deadline,
		Classify:    middleware.ErrorClass,
	}
	if gen.batch {
		if err := cl.Warm(ctx, 16); err != nil {
			return loadgen.Result{}, err
		}
		cfg.DoBatch = func(ctx context.Context, _, copies int) error {
			return batchPair(ctx, cl, copies)
		}
	} else {
		cfg.Do = func(ctx context.Context, _ loadgen.Request) error {
			id, err := cl.SubmitContext(ctx, "open", 1, time.Hour)
			if err != nil {
				return err
			}
			return cl.CancelContext(ctx, id)
		}
	}
	return loadgen.Run(ctx, cfg)
}

// batchPair performs one batched logical request: all copies submitted
// in one envelope, every copy that landed canceled in another.
func batchPair(ctx context.Context, cl *middleware.Client, copies int) error {
	jobs := make([]middleware.BatchJob, copies)
	for i := range jobs {
		jobs[i] = middleware.BatchJob{Name: "open", Nodes: 1, Walltime: time.Hour}
	}
	subs, err := cl.SubmitBatchContext(ctx, jobs)
	if err != nil {
		return err
	}
	ids := make([]int64, 0, len(subs))
	var firstErr error
	for _, r := range subs {
		if e := r.Err(); e == nil {
			ids = append(ids, r.JobID)
		} else if firstErr == nil {
			firstErr = e
		}
	}
	if len(ids) == 0 {
		return firstErr
	}
	cans, err := cl.CancelBatchContext(ctx, ids)
	if err != nil {
		return err
	}
	for _, r := range cans {
		if e := r.Err(); e != nil {
			return e
		}
	}
	return nil
}

// parseRedundancies parses the comma-separated redundancy list.
func parseRedundancies(s string) ([]int, error) {
	rates, err := loadgen.ParseRates(s)
	if err != nil {
		return nil, fmt.Errorf("bad redundancy list %q", s)
	}
	out := make([]int, len(rates))
	for i, v := range rates {
		r := int(v)
		if float64(r) != v || r < 1 {
			return nil, fmt.Errorf("bad redundancy %g (want positive integer)", v)
		}
		out[i] = r
	}
	return out, nil
}

// interrupted reports (and announces) a canceled run: partial results
// above are already flushed.
func interrupted(ctx context.Context, stdout io.Writer) bool {
	if ctx.Err() == nil {
		return false
	}
	fmt.Fprintln(stdout, "\ninterrupted — partial results above (in-flight requests drained)")
	return true
}
