// Command grambench reproduces the Section 4.2 middleware analysis:
// it measures (a) raw SOAP-style marshalling throughput of the [20]
// benchmark payload (30,000 {int,int,double} records, >450 KB) and
// (b) full middleware transaction throughput with and without durable
// per-transaction service state, then derives the redundancy bound
// r < iat * rate for each regime.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"redreq/internal/middleware"
	"redreq/internal/pbsd"
	"redreq/internal/report"
)

func main() {
	var (
		clients = flag.Int("clients", 4, "concurrent clients")
		dur     = flag.Duration("dur", 2*time.Second, "measurement window")
		iat     = flag.Float64("iat", 5.01, "mean job interarrival time in seconds for the bound")
		items   = flag.Int("items", 30000, "records in the marshalling payload")
	)
	flag.Parse()

	// (a) Raw marshalling, the gSOAP-style measurement of [20].
	payload := middleware.NewTripleArray(*items)
	raw, err := middleware.MarshalTriples(payload)
	if err != nil {
		fail(err)
	}
	n := 0
	start := time.Now()
	for time.Since(start) < *dur {
		b, err := middleware.MarshalTriples(payload)
		if err != nil {
			fail(err)
		}
		if _, err := middleware.UnmarshalTriples(b); err != nil {
			fail(err)
		}
		n++
	}
	marshalRate := float64(n) / time.Since(start).Seconds()
	fmt.Printf("raw marshal+unmarshal of %d-record payload (%d KB): %.1f round-trips/s\n",
		*items, len(raw)/1024, marshalRate)

	// (b) Full middleware transactions.
	t := report.NewTable("middleware transaction throughput (submit+cancel pairs)",
		"mode", "pairs/s", "tx/s", "bound r (iat)")
	modes := []struct {
		name              string
		durable, security bool
	}{
		{"in-memory", false, false},
		{"durable (state file + fsync per tx)", true, false},
		{"full GRAM-like (durable + message security)", true, true},
	}
	for _, m := range modes {
		rate, err := measure(*clients, *dur, m.durable, m.security)
		if err != nil {
			fail(err)
		}
		t.AddRow(m.name, report.Cell(rate.PairRate, 1), report.Cell(rate.PerSecond, 1),
			fmt.Sprintf("%d", pbsd.LoadBound(rate.PairRate, *iat)))
	}
	if err := t.Render(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Printf("\nThe paper measures ~0.5 submit+cancel pairs/s for GT4 WS-GRAM, giving r < 3;\n")
	fmt.Printf("the shape to check is marshalling >> middleware transactions, and the derived\n")
	fmt.Printf("bound r < iat * pair-rate for whichever layer is slowest.\n")
}

func measure(clients int, dur time.Duration, durable, security bool) (middleware.RateResult, error) {
	backend, err := pbsd.New(pbsd.Config{Nodes: 16})
	if err != nil {
		return middleware.RateResult{}, err
	}
	defer backend.Close()
	stateDir := ""
	if durable {
		stateDir, err = os.MkdirTemp("", "grambench-state")
		if err != nil {
			return middleware.RateResult{}, err
		}
		defer os.RemoveAll(stateDir)
	}
	svc, err := middleware.NewService(middleware.ServiceConfig{
		Durable:  durable,
		Security: security,
		StateDir: stateDir,
		Backend:  backend,
	})
	if err != nil {
		return middleware.RateResult{}, err
	}
	defer svc.Close()
	ep, err := middleware.Start(svc, "127.0.0.1:0")
	if err != nil {
		return middleware.RateResult{}, err
	}
	defer ep.Close()
	return middleware.MeasureRate(ep.URL, clients, dur, durable)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "grambench: %v\n", err)
	os.Exit(1)
}
