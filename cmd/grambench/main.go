// Command grambench reproduces the Section 4.2 middleware analysis:
// it measures (a) raw SOAP-style marshalling throughput of the [20]
// benchmark payload (30,000 {int,int,double} records, >450 KB) and
// (b) full middleware transaction throughput with and without durable
// per-transaction service state, then derives the redundancy bound
// r < iat * rate for each regime.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"redreq/internal/middleware"
	"redreq/internal/pbsd"
	"redreq/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses argv, runs the
// measurements, and returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("grambench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		clients = fs.Int("clients", 4, "concurrent clients")
		dur     = fs.Duration("dur", 2*time.Second, "measurement window")
		iat     = fs.Float64("iat", 5.01, "mean job interarrival time in seconds for the bound")
		items   = fs.Int("items", 30000, "records in the marshalling payload")
	)
	if err := fs.Parse(argv); err != nil {
		return 2 // the flag set already printed the error and usage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "grambench: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}

	// (a) Raw marshalling, the gSOAP-style measurement of [20].
	payload := middleware.NewTripleArray(*items)
	raw, err := middleware.MarshalTriples(payload)
	if err != nil {
		fmt.Fprintf(stderr, "grambench: %v\n", err)
		return 1
	}
	n := 0
	start := time.Now()
	for time.Since(start) < *dur {
		b, err := middleware.MarshalTriples(payload)
		if err != nil {
			fmt.Fprintf(stderr, "grambench: %v\n", err)
			return 1
		}
		if _, err := middleware.UnmarshalTriples(b); err != nil {
			fmt.Fprintf(stderr, "grambench: %v\n", err)
			return 1
		}
		n++
	}
	marshalRate := float64(n) / time.Since(start).Seconds()
	fmt.Fprintf(stdout, "raw marshal+unmarshal of %d-record payload (%d KB): %.1f round-trips/s\n",
		*items, len(raw)/1024, marshalRate)

	// (b) Full middleware transactions.
	t := report.NewTable("middleware transaction throughput (submit+cancel pairs)",
		"mode", "pairs/s", "tx/s", "bound r (iat)")
	modes := []struct {
		name              string
		durable, security bool
	}{
		{"in-memory", false, false},
		{"durable (state file + fsync per tx)", true, false},
		{"full GRAM-like (durable + message security)", true, true},
	}
	for _, m := range modes {
		rate, err := measure(*clients, *dur, m.durable, m.security)
		if err != nil {
			fmt.Fprintf(stderr, "grambench: %v\n", err)
			return 1
		}
		t.AddRow(m.name, report.Cell(rate.PairRate, 1), report.Cell(rate.PerSecond, 1),
			fmt.Sprintf("%d", pbsd.LoadBound(rate.PairRate, *iat)))
	}
	if err := t.Render(stdout); err != nil {
		fmt.Fprintf(stderr, "grambench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "\nThe paper measures ~0.5 submit+cancel pairs/s for GT4 WS-GRAM, giving r < 3;\n")
	fmt.Fprintf(stdout, "the shape to check is marshalling >> middleware transactions, and the derived\n")
	fmt.Fprintf(stdout, "bound r < iat * pair-rate for whichever layer is slowest.\n")
	return 0
}

func measure(clients int, dur time.Duration, durable, security bool) (middleware.RateResult, error) {
	backend, err := pbsd.New(pbsd.Config{Nodes: 16})
	if err != nil {
		return middleware.RateResult{}, err
	}
	defer backend.Close()
	stateDir := ""
	if durable {
		stateDir, err = os.MkdirTemp("", "grambench-state")
		if err != nil {
			return middleware.RateResult{}, err
		}
		defer os.RemoveAll(stateDir)
	}
	svc, err := middleware.NewService(middleware.ServiceConfig{
		Durable:  durable,
		Security: security,
		StateDir: stateDir,
		Backend:  backend,
	})
	if err != nil {
		return middleware.RateResult{}, err
	}
	defer svc.Close()
	ep, err := middleware.Start(svc, "127.0.0.1:0")
	if err != nil {
		return middleware.RateResult{}, err
	}
	defer ep.Close()
	return middleware.MeasureRate(ep.URL, clients, dur, durable)
}
