// Command redsim runs the paper's Section 3 and Section 5 simulation
// experiments and prints the corresponding table or figure data.
//
// Usage:
//
//	redsim -exp fig1 [-reps 50] [-horizon 21600] [-load 0.45] ...
//
// Experiments: fig1, fig2, table1, table2, fig3, table3, fig4, table4,
// qgrowth, inflate, loadsweep, all.
//
// Observability: -trace FILE aggregates run internals (DES event
// counters, per-cluster queue-depth series, redundant submit/cancel
// lifecycle, daemon/middleware latency histograms) across every
// simulation and writes a trace report — JSON when FILE ends in
// .json, CSV sections when it ends in .csv, aligned tables otherwise
// ("-" writes tables to stdout). -cpuprofile/-memprofile write pprof
// profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"redreq/internal/experiment"
	"redreq/internal/obs"
	"redreq/internal/report"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: fig1|fig2|table1|table2|fig3|table3|fig4|table4|sec4|qgrowth|inflate|loadsweep|moldable|multiq|ablations|all")
		reps    = flag.Int("reps", 10, "replications per data point (the paper uses 50)")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		horizon = flag.Float64("horizon", 6*3600, "submission window in seconds")
		nodes   = flag.Int("nodes", 128, "homogeneous cluster size")
		load    = flag.Float64("load", 0.45, "calibrated offered load on the reference cluster")
		minRt   = flag.Float64("minrt", 30, "runtime floor in seconds")
		maxRt   = flag.Float64("maxrt", 36*3600, "runtime cap in seconds")
		seed    = flag.Uint64("seed", 20060619, "base seed")
		quiet   = flag.Bool("q", false, "suppress progress output")
		traceTo = flag.String("trace", "", "write an aggregate trace report to this file (.json/.csv by extension, tables otherwise; \"-\" for stdout)")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "redsim: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "redsim: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	opts := experiment.Defaults()
	opts.Reps = *reps
	opts.Workers = *workers
	opts.Horizon = *horizon
	opts.Nodes = *nodes
	opts.TargetLoad = *load
	opts.MinRuntime = *minRt
	opts.MaxRuntime = *maxRt
	opts.BaseSeed = *seed
	if *traceTo != "" {
		opts.Trace = obs.New()
	}
	if !*quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d simulations", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	run := func(name string, fn func(experiment.Options) error) {
		t0 := time.Now()
		fmt.Printf("== %s ==\n", name)
		if err := fn(opts); err != nil {
			fmt.Fprintf(os.Stderr, "redsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s, %d reps)\n\n", time.Since(t0).Round(time.Second), opts.Reps)
	}

	which := strings.ToLower(*exp)
	all := which == "all"
	didSomething := false
	if all || which == "fig1" || which == "fig2" {
		run("Figures 1 and 2: relative average stretch and CV vs number of clusters", runFig12)
		didSomething = true
	}
	if all || which == "table1" {
		run("Table 1: scheduling algorithms x estimate quality (N=10, HALF)", runTable1)
		didSomething = true
	}
	if all || which == "table2" {
		run("Table 2: non-uniformly distributed redundant requests (N=10)", runTable2)
		didSomething = true
	}
	if all || which == "fig3" {
		run("Figure 3: relative average stretch vs job interarrival time (N=10)", runFig3)
		didSomething = true
	}
	if all || which == "table3" {
		run("Table 3: heterogeneous platforms (N=10)", runTable3)
		didSomething = true
	}
	if all || which == "fig4" {
		run("Figure 4: stretch of r-jobs and n-r jobs vs percentage of redundant jobs (N=10)", runFig4)
		didSomething = true
	}
	if all || which == "table4" {
		run("Table 4: queue waiting time over-prediction (N=10, CBF)", runTable4)
		didSomething = true
	}
	if all || which == "sec4" {
		run("Section 4: system load (real scheduler + middleware)", runSection4)
		didSomething = true
	}
	if all || which == "qgrowth" {
		run("Section 4.1: steady-state queue growth under ALL (24h)", runQGrowth)
		didSomething = true
	}
	if all || which == "inflate" {
		run("Section 3.1.2: requested-time inflation of redundant copies", runInflate)
		didSomething = true
	}
	if all || which == "loadsweep" {
		run("Ablation: offered-load sweep (ALL vs NONE)", runLoadSweep)
		didSomething = true
	}
	if all || which == "ablations" {
		run("Ablations: scheduler design choices (HALF vs NONE, N=10)", runAblations)
		didSomething = true
	}
	if all || which == "multiq" {
		run("Extension (option iii): redundant requests across queues of one resource", runMultiQueue)
		didSomething = true
	}
	if all || which == "moldable" {
		run("Extension (option iv): redundant shape variants for moldable jobs", runMoldable)
		didSomething = true
	}
	if !didSomething {
		fmt.Fprintf(os.Stderr, "redsim: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if *traceTo != "" {
		if err := writeTrace(*traceTo, opts.Trace); err != nil {
			fmt.Fprintf(os.Stderr, "redsim: trace: %v\n", err)
			os.Exit(1)
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "redsim: memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "redsim: memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// writeTrace emits the aggregate trace report; the format follows the
// destination's extension (JSON for .json, CSV sections for .csv,
// aligned tables otherwise), with "-" meaning stdout.
func writeTrace(dest string, tr *obs.Trace) error {
	snap := tr.Snapshot()
	var w *os.File
	if dest == "-" {
		w = os.Stdout
	} else {
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch {
	case strings.HasSuffix(dest, ".json"):
		return report.WriteTraceJSON(w, snap)
	case strings.HasSuffix(dest, ".csv"):
		return report.WriteTraceCSV(w, snap)
	default:
		return report.RenderTrace(w, snap)
	}
}

func runFig12(opts experiment.Options) error {
	points, err := experiment.SchemesVsN(opts, nil)
	if err != nil {
		return err
	}
	fig1 := report.NewSeries("Figure 1: average stretch relative to no redundancy", "N", "R2", "R3", "R4", "HALF", "ALL")
	fig2 := report.NewSeries("Figure 2: coefficient of variation of stretches relative to no redundancy", "N", "R2", "R3", "R4", "HALF", "ALL")
	maxs := report.NewSeries("(extra) maximum stretch relative to no redundancy", "N", "R2", "R3", "R4", "HALF", "ALL")
	for _, pt := range points {
		var avg, cv, mx []float64
		for _, sr := range pt.Schemes {
			avg = append(avg, sr.Rel.AvgStretch)
			cv = append(cv, sr.Rel.CVStretch)
			mx = append(mx, sr.Rel.MaxStretch)
		}
		x := fmt.Sprintf("%d", pt.N)
		fig1.AddPoint(x, avg...)
		fig2.AddPoint(x, cv...)
		maxs.AddPoint(x, mx...)
	}
	if err := fig1.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := fig2.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := maxs.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	t := report.NewTable("Win statistics (fraction of replications where the scheme beats no redundancy; worst loss)",
		"N", "scheme", "win%", "worst loss%", "baseline avg stretch")
	for _, pt := range points {
		for _, sr := range pt.Schemes {
			t.AddRow(fmt.Sprintf("%d", pt.N), sr.Scheme.String(),
				report.Cell(sr.Rel.WinFraction*100, 0),
				report.Cell(sr.Rel.WorstLoss*100, 1),
				report.Cell(pt.BaselineAvgStretch, 2))
		}
	}
	return t.Render(os.Stdout)
}

func runTable1(opts experiment.Options) error {
	rows, err := experiment.Table1(opts)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 1: relative metrics for HALF vs no redundancy",
		"algorithm", "rel avg stretch (exact)", "rel avg stretch (real)", "rel CV (exact)", "rel CV (real)")
	for _, r := range rows {
		t.AddRow(r.Alg.String(),
			report.Cell(r.AvgStretchExact, 2), report.Cell(r.AvgStretchReal, 2),
			report.Cell(r.CVStretchesExact, 2), report.Cell(r.CVStretchesReal, 2))
	}
	return t.Render(os.Stdout)
}

func runTable2(opts experiment.Options) error {
	rows, err := experiment.Table2(opts)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 2: biased remote selection, relative to no redundancy",
		"metric", "R2", "R3", "R4", "HALF")
	avg := []string{"rel avg stretch"}
	cv := []string{"rel CV of stretches"}
	for _, r := range rows {
		avg = append(avg, report.Cell(r.AvgStretch, 2))
		cv = append(cv, report.Cell(r.CVStretch, 2))
	}
	t.AddRow(avg...)
	t.AddRow(cv...)
	return t.Render(os.Stdout)
}

func runFig3(opts experiment.Options) error {
	points, err := experiment.Figure3(opts, nil)
	if err != nil {
		return err
	}
	s := report.NewSeries("Figure 3: relative average stretch vs mean interarrival time (s)", "iat", "R2", "R3", "R4", "HALF", "ALL")
	for _, pt := range points {
		var ys []float64
		for _, sr := range pt.Schemes {
			ys = append(ys, sr.Rel.AvgStretch)
		}
		s.AddPoint(fmt.Sprintf("%.2f", pt.MeanIAT), ys...)
	}
	return s.Render(os.Stdout)
}

func runTable3(opts experiment.Options) error {
	rows, err := experiment.Table3(opts)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 3: heterogeneous platforms, relative to no redundancy",
		"scheme", "rel avg stretch", "rel CV of stretches")
	for _, r := range rows {
		t.AddRow(r.Scheme.String(), report.Cell(r.AvgStretch, 2), report.Cell(r.CVStretch, 2))
	}
	return t.Render(os.Stdout)
}

func runFig4(opts experiment.Options) error {
	points, err := experiment.Figure4(opts, nil)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 4: average stretch by job class vs percentage of redundant jobs",
		"scheme", "p%", "r jobs", "n-r jobs", "all")
	for _, pt := range points {
		rCell, nrCell := "-", "-"
		if pt.Fraction > 0 {
			rCell = report.Cell(pt.RStretch, 2)
		}
		if pt.Fraction < 1 {
			nrCell = report.Cell(pt.NRStretch, 2)
		}
		t.AddRow(pt.Scheme.String(), fmt.Sprintf("%.0f", pt.Fraction*100),
			rCell, nrCell, report.Cell(pt.AllStretch, 2))
	}
	return t.Render(os.Stdout)
}

func runTable4(opts experiment.Options) error {
	res, err := experiment.Table4(opts)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 4: queue waiting time over-prediction (predicted/effective wait)",
		"population", "average", "CV%", "jobs")
	t.AddRow("0% redundant", report.Cell(res.BaselineAvg, 2), report.Cell(res.BaselineCV, 0), fmt.Sprintf("%d", res.BaselineN))
	t.AddRow(fmt.Sprintf("%.0f%% ALL: n-r jobs", res.RedundantPercent*100),
		report.Cell(res.NonRedundantAvg, 2), report.Cell(res.NonRedundantCV, 0), fmt.Sprintf("%d", res.NonRedundantN))
	t.AddRow(fmt.Sprintf("%.0f%% ALL: r jobs", res.RedundantPercent*100),
		report.Cell(res.RedundantAvg, 2), report.Cell(res.RedundantCV, 0), fmt.Sprintf("%d", res.RedundantN))
	return t.Render(os.Stdout)
}

func runQGrowth(opts experiment.Options) error {
	opts.Horizon = 24 * 3600 // the paper's window for this observation
	res, err := experiment.QueueGrowth(opts)
	if err != nil {
		return err
	}
	fmt.Printf("average max queue length: NONE %.1f, ALL %.1f  (ratio %.3f; paper: < 1.02... per-request counting differs, see EXPERIMENTS.md)\n",
		res.MaxQueueNone, res.MaxQueueAll, res.Ratio)
	return nil
}

func runInflate(opts experiment.Options) error {
	rows, err := experiment.InflationAblation(opts)
	if err != nil {
		return err
	}
	t := report.NewTable("Requested-time inflation of remote copies (HALF vs no redundancy)",
		"inflation", "rel avg stretch", "rel CV of stretches")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.0f%%", r.Inflate*100), report.Cell(r.AvgStretch, 2), report.Cell(r.CVStretch, 2))
	}
	return t.Render(os.Stdout)
}

func runLoadSweep(opts experiment.Options) error {
	points, err := experiment.LoadSweep(opts, nil)
	if err != nil {
		return err
	}
	s := report.NewSeries("Offered-load sweep: ALL vs NONE", "load", "baseline stretch", "rel avg stretch")
	for _, pt := range points {
		s.AddPoint(fmt.Sprintf("%.2f", pt.TargetLoad), pt.BaselineAvgStretch, pt.RelAvgStretch)
	}
	return s.Render(os.Stdout)
}

func runAblations(opts experiment.Options) error {
	rows, err := experiment.Ablations(opts)
	if err != nil {
		return err
	}
	t := report.NewTable("Scheduler design-choice ablations (HALF vs NONE, N=10)",
		"design choice", "rel avg stretch", "rel CV of stretches")
	for _, r := range rows {
		t.AddRow(r.Name, report.Cell(r.RelAvgStretch, 2), report.Cell(r.RelCVStretch, 2))
	}
	return t.Render(os.Stdout)
}

func runMultiQueue(opts experiment.Options) error {
	res, err := experiment.MultiQueue(opts)
	if err != nil {
		return err
	}
	fmt.Printf("avg stretch: best-queue %.2f, redundant-queues %.2f (ratio %.2f)\n",
		res.SingleAvgStretch, res.RedundantAvgStretch, res.RelAvgStretch)
	fmt.Printf("jobs served by the short queue: %.0f%% -> %.0f%%\n",
		res.ShortWinsSingle*100, res.ShortWinsRedundant*100)
	return nil
}

func runMoldable(opts experiment.Options) error {
	res, err := experiment.Moldable(opts)
	if err != nil {
		return err
	}
	fmt.Printf("avg stretch (vs base-shape runtime): fixed %.2f, redundant shapes %.2f (ratio %.2f)\n",
		res.FixedAvgStretch, res.RedundantAvgStretch, res.RelAvgStretch)
	fmt.Printf("jobs that ran with a different shape than requested: %.0f%%\n", res.ShapeChangedFrac*100)
	return nil
}

func runSection4(opts experiment.Options) error {
	res, err := experiment.Section4(experiment.Section4Options{
		Clients: 4,
		Window:  2 * time.Second,
		Trace:   opts.Trace,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	return nil
}
