// Command redsim runs the paper's experiments through the registry in
// internal/experiment and renders the results.
//
// Usage:
//
//	redsim -run table1            # one experiment, aligned tables
//	redsim -run fig4,table4       # several, in registry order as given
//	redsim -run all               # everything
//	redsim -list                  # enumerate the registry
//	redsim -run table1 -format json
//	redsim -run all -format csv -out results/
//
// Output goes to stdout in the chosen -format (aligned tables, CSV
// sections, or a JSON array of report objects); with -out DIR each
// experiment instead writes DIR/<name>.<txt|csv|json>. Progress and
// timing go to stderr. Exit status: 0 on success, 1 on runtime
// failure, 2 on usage errors.
//
// Experiments share one bounded worker pool and a memoization layer
// (identical simulation configs run once per process, paired-seed job
// streams are generated once and shared); output is byte-identical
// either way, and -cache=off disables the memo for A/B checks.
//
// Observability: -trace FILE aggregates run internals (DES event
// counters, per-cluster queue-depth series, redundant submit/cancel
// lifecycle, daemon/middleware latency histograms) across every
// simulation and writes a trace report — JSON when FILE ends in
// .json, CSV sections when it ends in .csv, aligned tables otherwise
// ("-" writes tables to stdout). -cpuprofile/-memprofile write pprof
// profiles.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"redreq/internal/core"
	"redreq/internal/experiment"
	"redreq/internal/obs"
	"redreq/internal/report"
	"redreq/internal/sched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses argv, dispatches over the
// experiment registry, and returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("redsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runNames = fs.String("run", "all", "comma-separated experiment names (see -list), or \"all\"")
		expName  = fs.String("exp", "", "deprecated alias for -run")
		list     = fs.Bool("list", false, "list the registered experiments and exit")
		format   = fs.String("format", "table", "output format: table|csv|json")
		outDir   = fs.String("out", "", "write one file per experiment into this directory instead of stdout")
		reps     = fs.Int("reps", 10, "replications per data point (the paper uses 50)")
		workers  = fs.Int("workers", 0, "total CPU budget shared by simulations and shards (0 = GOMAXPROCS)")
		shards   = fs.Int("shards", 0, "event shards per simulation: N>1 shards each run, 1 forces the sequential engine, 0 = min(GOMAXPROCS, clusters); results are identical at every setting")
		horizon  = fs.Float64("horizon", 6*3600, "submission window in seconds")
		nodes    = fs.Int("nodes", 128, "homogeneous cluster size")
		load     = fs.Float64("load", 0.45, "calibrated offered load on the reference cluster")
		minRt    = fs.Float64("minrt", 30, "runtime floor in seconds")
		maxRt    = fs.Float64("maxrt", 36*3600, "runtime cap in seconds")
		routing  = fs.String("routing", "uniform", "remote-copy routing policy: uniform|biased|queuelen|leastwork|po2 (informed policies read the grid information service)")
		ordering = fs.String("ordering", "fcfs", "local queue ordering: fcfs|sjf|aged (FCFS is the paper's setup; CBF supports only fcfs)")
		stale    = fs.Float64("staleness", 0, "grid information service publish interval in seconds for informed routing (0 = control latency, negative = live reads)")
		sweep    = fs.String("sweep", "", "comma-separated sweep positions overriding an experiment's default axis (e.g. offered rates for -run overload)")
		stackSel = fs.String("stack", "", "real-stack variant for -run overload: legacy|fast (empty = both); other experiments ignore it")
		seed     = fs.Uint64("seed", 20060619, "base seed")
		cache    = fs.String("cache", "on", "memoize identical simulation runs and job streams across experiments: on|off")
		quiet    = fs.Bool("q", false, "suppress progress and timing output")
		traceTo  = fs.String("trace", "", "write an aggregate trace report to this file (.json/.csv by extension, tables otherwise; \"-\" for stdout)")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile to this file")
	)
	if err := fs.Parse(argv); err != nil {
		return 2 // the flag set already printed the error and usage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "redsim: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}

	if *list {
		t := report.NewTable("", "name", "aliases", "description", "parameters")
		for _, s := range experiment.All() {
			t.AddRow(s.Name, strings.Join(s.Aliases, ","), s.Desc, s.Params)
		}
		if err := t.Render(stdout); err != nil {
			fmt.Fprintf(stderr, "redsim: %v\n", err)
			return 1
		}
		return 0
	}

	switch *format {
	case "table", "csv", "json":
	default:
		fmt.Fprintf(stderr, "redsim: unknown format %q (want table, csv, or json)\n", *format)
		return 2
	}
	switch *cache {
	case "on", "off":
	default:
		fmt.Fprintf(stderr, "redsim: unknown cache mode %q (want on or off)\n", *cache)
		return 2
	}

	names := *runNames
	if *expName != "" {
		fmt.Fprintln(stderr, "redsim: -exp is deprecated, use -run")
		names = *expName
	}
	specs, err := resolve(names)
	if err != nil {
		fmt.Fprintf(stderr, "redsim: %v\n", err)
		fs.Usage()
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "redsim: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "redsim: cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	opts := experiment.Defaults()
	opts.Reps = *reps
	opts.Workers = *workers
	opts.Shards = *shards
	if opts.Shards == 0 {
		// Auto: one shard per available CPU; the engine further caps
		// each run at its cluster count. Output is shard-count
		// invariant, so auto never changes results.
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	opts.Horizon = *horizon
	opts.Nodes = *nodes
	opts.TargetLoad = *load
	opts.MinRuntime = *minRt
	opts.MaxRuntime = *maxRt
	pol, err := core.ParseRouting(*routing)
	if err != nil {
		fmt.Fprintf(stderr, "redsim: %v\n", err)
		return 2
	}
	opts.Routing = pol
	ord, err := sched.ParseOrdering(*ordering)
	if err != nil {
		fmt.Fprintf(stderr, "redsim: %v\n", err)
		return 2
	}
	opts.Ordering = ord
	opts.Staleness = *stale
	if *sweep != "" {
		if opts.Sweep, err = parseSweep(*sweep); err != nil {
			fmt.Fprintf(stderr, "redsim: %v\n", err)
			return 2
		}
	}
	switch *stackSel {
	case "", "legacy", "fast":
		opts.Stack = *stackSel
	default:
		fmt.Fprintf(stderr, "redsim: unknown stack %q (want legacy or fast)\n", *stackSel)
		return 2
	}
	opts.BaseSeed = *seed
	if *cache == "on" {
		opts.Cache = core.NewMemo()
	}
	if *traceTo != "" {
		opts.Trace = obs.New()
	}
	if !*quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(stderr, "\r%d/%d simulations", done, total)
			if done == total {
				fmt.Fprintln(stderr)
			}
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "redsim: %v\n", err)
			return 1
		}
	}

	// Experiments run concurrently over one shared worker pool;
	// reports are emitted in registry order as each becomes ready, so
	// stdout stays byte-identical to the old sequential loop.
	var jsonReports []*report.Report
	err = experiment.Reports(specs, opts, func(i int, rep *report.Report, elapsed time.Duration) error {
		if !*quiet {
			fmt.Fprintf(stderr, "(%s: %s, %d reps)\n", specs[i].Name, elapsed.Round(time.Second), opts.Reps)
		}
		switch {
		case *outDir != "":
			return writeReportFile(*outDir, *format, rep)
		case *format == "table":
			return rep.Render(stdout)
		case *format == "csv":
			return rep.WriteCSV(stdout)
		default: // json: a single array once every experiment has run
			jsonReports = append(jsonReports, rep)
			return nil
		}
	})
	if err != nil {
		fmt.Fprintf(stderr, "redsim: %v\n", err)
		return 1
	}
	if *outDir == "" && *format == "json" {
		if err := report.WriteJSON(stdout, jsonReports...); err != nil {
			fmt.Fprintf(stderr, "redsim: %v\n", err)
			return 1
		}
	}
	if !*quiet && opts.Cache != nil {
		st := opts.Cache.Stats()
		fmt.Fprintf(stderr, "cache: results %d hit / %d miss / %d inflight, streams %d hit / %d miss\n",
			st.Hit, st.Miss, st.Inflight, st.StreamHit, st.StreamMiss)
	}
	opts.Cache.Publish(opts.Trace)

	if *traceTo != "" {
		if err := writeTrace(*traceTo, opts.Trace); err != nil {
			fmt.Fprintf(stderr, "redsim: trace: %v\n", err)
			return 1
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(stderr, "redsim: memprofile: %v\n", err)
			return 1
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "redsim: memprofile: %v\n", err)
			f.Close()
			return 1
		}
		f.Close()
	}
	return 0
}

// parseSweep parses the -sweep override into sweep positions.
func parseSweep(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad sweep position %q (want positive numbers)", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// resolve maps the -run value to registry specs, preserving order and
// dropping duplicates; "all" anywhere selects the full registry.
func resolve(names string) ([]*experiment.Spec, error) {
	var out []*experiment.Spec
	seen := make(map[string]bool)
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if strings.EqualFold(name, "all") {
			return experiment.All(), nil
		}
		s, ok := experiment.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", name)
		}
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no experiments selected")
	}
	return out, nil
}

// writeReportFile writes one experiment's report into dir as
// <name>.<txt|csv|json>.
func writeReportFile(dir, format string, rep *report.Report) error {
	ext := map[string]string{"table": "txt", "csv": "csv", "json": "json"}[format]
	f, err := os.Create(filepath.Join(dir, rep.Name+"."+ext))
	if err != nil {
		return err
	}
	var werr error
	switch format {
	case "table":
		werr = rep.Render(f)
	case "csv":
		werr = rep.WriteCSV(f)
	default:
		werr = rep.WriteJSON(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// writeTrace emits the aggregate trace report; the format follows the
// destination's extension (JSON for .json, CSV sections for .csv,
// aligned tables otherwise), with "-" meaning stdout.
func writeTrace(dest string, tr *obs.Trace) error {
	snap := tr.Snapshot()
	var w *os.File
	if dest == "-" {
		w = os.Stdout
	} else {
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch {
	case strings.HasSuffix(dest, ".json"):
		return report.WriteTraceJSON(w, snap)
	case strings.HasSuffix(dest, ".csv"):
		return report.WriteTraceCSV(w, snap)
	default:
		return report.RenderTrace(w, snap)
	}
}
