package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"redreq/internal/experiment"
)

// Regenerate the golden fixtures after an intentional numeric change:
//
//	go test ./cmd/redsim -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden fixtures in testdata/")

// goldenExperiments are the fixed-seed experiments whose quick-scale
// JSON output is pinned byte-for-byte. sec4 and the wall-clock layers
// are excluded (nondeterministic); the sweep experiments with long
// default axes are excluded to keep the test fast.
var goldenExperiments = []string{"table1", "table4", "fig4", "qgrowth", "inflate", "faults", "validate", "trace", "routing"}

// quickArgs is the reduced-scale configuration the fixtures were
// generated with (matches experiment.Quick()).
func quickArgs(name string) []string {
	return []string{"-run", name, "-format", "json", "-reps", "3", "-horizon", "3600", "-q"}
}

func TestGoldenJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiments")
	}
	for _, name := range goldenExperiments {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var out, errb bytes.Buffer
			if code := run(quickArgs(name), &out, &errb); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
			}
			golden := filepath.Join("testdata", name+"_quick.json")
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s",
					golden, out.Bytes(), want)
			}
			// The fixture itself must be valid JSON.
			var doc []map[string]any
			if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
				t.Fatalf("output is not a JSON array: %v", err)
			}
			if len(doc) != 1 || doc[0]["name"] != name {
				t.Errorf("array = %d reports, first name = %v", len(doc), doc[0]["name"])
			}
		})
	}
}

// TestGoldenShardFlag proves the -shards flag never changes output:
// the fixtures were pinned with the sequential engine, and both
// -shards 1 (forced sequential) and -shards 8 (sharded wherever a
// config is eligible — the validate shard audit exercises eligible
// configs directly) must reproduce them byte-for-byte.
func TestGoldenShardFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiments")
	}
	for _, name := range []string{"table1", "fig4", "validate", "routing"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want, err := os.ReadFile(filepath.Join("testdata", name+"_quick.json"))
			if err != nil {
				t.Fatalf("%v (run TestGoldenJSON with -update first)", err)
			}
			for _, shards := range []string{"1", "8"} {
				var out, errb bytes.Buffer
				args := append(quickArgs(name), "-shards", shards)
				if code := run(args, &out, &errb); code != 0 {
					t.Fatalf("-shards %s: exit %d, stderr:\n%s", shards, code, errb.String())
				}
				if !bytes.Equal(out.Bytes(), want) {
					t.Errorf("-shards %s output differs from the pinned fixture (%d vs %d bytes)",
						shards, out.Len(), len(want))
				}
			}
		})
	}
}

func TestList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	for _, s := range experiment.All() {
		if !strings.Contains(out.String(), s.Name) {
			t.Errorf("-list missing %q:\n%s", s.Name, out.String())
		}
	}
}

func TestUnknownExperimentExitsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "nope"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown experiment "nope"`) {
		t.Errorf("stderr missing diagnosis:\n%s", errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("usage error wrote to stdout:\n%s", out.String())
	}
}

func TestBadFormatExitsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "table1", "-format", "xml"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown format") {
		t.Errorf("stderr missing diagnosis:\n%s", errb.String())
	}
}

func TestBadFlagExitsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

func TestPositionalArgsExitUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"table1"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestRuntimeErrorExitsOne drives a registry experiment into a runtime
// failure (zero replications) and checks the non-zero exit and stderr
// diagnosis — the exit-code contract the old per-experiment wrappers
// enforced inconsistently.
func TestRuntimeErrorExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "table1", "-reps", "0", "-q"}, &out, &errb); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "Reps must be >= 1") {
		t.Errorf("stderr missing cause:\n%s", errb.String())
	}
}

// TestMultiRunJSON checks comma-separated selection and that the JSON
// stream is one array with the experiments in the requested order.
func TestMultiRunJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	var out, errb bytes.Buffer
	args := []string{"-run", "inflate,table1", "-format", "json",
		"-reps", "2", "-horizon", "900", "-nodes", "32", "-q"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	var doc []struct {
		Name   string `json:"name"`
		Tables []struct {
			Columns []string         `json:"columns"`
			Rows    []map[string]any `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(doc) != 2 || doc[0].Name != "inflate" || doc[1].Name != "table1" {
		t.Fatalf("wrong reports: %+v", doc)
	}
	for _, rep := range doc {
		if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) == 0 {
			t.Errorf("%s: empty tables", rep.Name)
		}
	}
}

// TestOutDirWritesFiles checks -out writes one file per experiment in
// the chosen format.
func TestOutDirWritesFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	dir := t.TempDir()
	var out, errb bytes.Buffer
	args := []string{"-run", "inflate", "-format", "csv", "-out", dir,
		"-reps", "2", "-horizon", "900", "-nodes", "32", "-q"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("-out still wrote to stdout:\n%s", out.String())
	}
	raw, err := os.ReadFile(filepath.Join(dir, "inflate.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "# experiment: inflate\n") {
		t.Errorf("csv file content:\n%s", raw)
	}
}

// TestCSVStdout checks the csv format on stdout parses and leads with
// the experiment comment.
func TestCSVStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	var out, errb bytes.Buffer
	args := []string{"-run", "table1", "-format", "csv",
		"-reps", "2", "-horizon", "900", "-nodes", "32", "-q"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	lines := strings.Split(out.String(), "\n")
	if lines[0] != "# experiment: table1" {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "algorithm,") {
		t.Errorf("header line = %q", lines[2])
	}
}

// TestDeterministicAcrossWorkersAndCache pins the memoization and
// shared-pool scheduling as pure wall-clock optimizations: a fixed-seed
// multi-experiment run must produce byte-identical JSON whether
// simulations run on one worker or eight, with the cache on or off.
// The set spans matrix experiments, a scheme sweep, a bespoke scenario
// engine, and fault injection; qgrowth is left out only because its
// pinned 24h horizon would dominate the suite (TestGoldenJSON covers
// it cache-on).
func TestDeterministicAcrossWorkersAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments several times")
	}
	base := []string{"-run", "table1,fig4,inflate,multiq,faults", "-format", "json",
		"-reps", "2", "-horizon", "900", "-nodes", "32", "-q"}
	configs := map[string][]string{
		"workers=1":           append([]string(nil), append(base, "-workers", "1")...),
		"workers=8":           append([]string(nil), append(base, "-workers", "8")...),
		"workers=8,cache=off": append([]string(nil), append(base, "-workers", "8", "-cache", "off")...),
	}
	outputs := map[string]string{}
	for name, args := range configs {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("%s: exit %d, stderr:\n%s", name, code, errb.String())
		}
		outputs[name] = out.String()
	}
	want := outputs["workers=1"]
	if want == "" {
		t.Fatal("workers=1 produced no output")
	}
	for name, got := range outputs {
		if got != want {
			t.Errorf("%s output differs from workers=1 (%d vs %d bytes)", name, len(got), len(want))
		}
	}
}

// TestCacheFlagValidation rejects cache modes other than on/off.
func TestCacheFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "table1", "-cache", "maybe"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown cache mode") {
		t.Errorf("stderr missing diagnosis:\n%s", errb.String())
	}
}

// TestBadOrderingExitsUsage rejects unknown queue orderings.
func TestBadRoutingExitsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "table1", "-routing", "psychic"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown routing policy") {
		t.Errorf("stderr missing diagnosis:\n%s", errb.String())
	}
}

func TestBadOrderingExitsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "table1", "-ordering", "lifo"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown ordering") {
		t.Errorf("stderr missing diagnosis:\n%s", errb.String())
	}
}

// TestDeprecatedExpFlag checks -exp still selects experiments (with a
// deprecation note on stderr).
func TestDeprecatedExpFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-exp is deprecated") {
		t.Errorf("stderr missing deprecation note:\n%s", errb.String())
	}
}
