// Command benchjson turns `go test -bench` output into a recorded
// benchmark trajectory. It reads benchmark output on stdin, echoes it
// unchanged to stdout (so it can sit at the end of a pipe without
// hiding results), and appends one labeled entry to a JSON history
// file. The history seeds regression comparisons: future PRs diff
// their numbers against the recorded ones instead of against memory.
//
// Usage:
//
//	go test -run=NONE -bench='SimulationCore|Engine' -benchmem . | benchjson -label after -out BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark line: its name (without the "Benchmark"
// prefix and -GOMAXPROCS suffix), iteration count, and every reported
// metric keyed by unit (ns/op, B/op, allocs/op, custom metrics like
// jobs/s).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Entry is one recorded benchmark run.
type Entry struct {
	Label      string      `json:"label"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// History is the on-disk format of the benchmark trajectory.
type History struct {
	Entries []Entry `json:"entries"`
}

func main() {
	label := flag.String("label", "dev", "label recorded with this entry (e.g. baseline, pr2)")
	out := flag.String("out", "BENCH_core.json", "benchmark history file to append to")
	flag.Parse()

	entry := Entry{Label: *label}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			entry.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			entry.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			entry.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			entry.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				entry.Benchmarks = append(entry.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(entry.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin; history not updated")
		os.Exit(1)
	}

	var hist History
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &hist); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not a history file: %v\n", *out, err)
			os.Exit(1)
		}
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	hist.Entries = append(hist.Entries, entry)

	enc, err := json.MarshalIndent(&hist, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmarks as %q in %s (%d entries)\n",
		len(entry.Benchmarks), *label, *out, len(hist.Entries))
}

// parseBench parses one benchmark result line:
//
//	BenchmarkEngine/trace=off-8  5  246078321 ns/op  3817436 B/op  70847 allocs/op
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix, if present, from the last segment.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
