// Command benchjson turns `go test -bench` output into a recorded
// benchmark trajectory. It reads benchmark output on stdin, echoes it
// unchanged to stdout (so it can sit at the end of a pipe without
// hiding results), and appends one labeled entry to a JSON history
// file. The history seeds regression comparisons: after appending,
// benchjson prints the per-metric percentage change between the last
// two entries, so a perf PR's `make bench` ends with its own delta
// summary instead of two walls of numbers to eyeball.
//
// Usage:
//
//	go test -run=NONE -bench='SimulationCore|Engine' -benchmem . | benchjson -label after -out BENCH_core.json
//	benchjson -check BENCH_core.json   # validate a history file (CI)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark line: its name (without the "Benchmark"
// prefix and -GOMAXPROCS suffix), iteration count, and every reported
// metric keyed by unit (ns/op, B/op, allocs/op, custom metrics like
// jobs/s).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Entry is one recorded benchmark run.
type Entry struct {
	Label      string      `json:"label"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// History is the on-disk format of the benchmark trajectory.
type History struct {
	Entries []Entry `json:"entries"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(argv []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	label := fs.String("label", "dev", "label recorded with this entry (e.g. baseline, pr2)")
	out := fs.String("out", "BENCH_core.json", "benchmark history file to append to")
	check := fs.String("check", "", "validate this history file and exit without reading stdin")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *check != "" {
		if err := checkHistory(*check); err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "benchjson: %s is a valid history file\n", *check)
		return 0
	}

	entry := Entry{Label: *label}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(stdout, line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			entry.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			entry.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			entry.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			entry.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				entry.Benchmarks = append(entry.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(stderr, "benchjson: read: %v\n", err)
		return 1
	}
	if len(entry.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines on stdin; history not updated")
		return 1
	}

	var hist History
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &hist); err != nil {
			fmt.Fprintf(stderr, "benchjson: %s exists but is not a history file: %v\n", *out, err)
			return 1
		}
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	hist.Entries = append(hist.Entries, entry)

	enc, err := json.MarshalIndent(&hist, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "benchjson: recorded %d benchmarks as %q in %s (%d entries)\n",
		len(entry.Benchmarks), *label, *out, len(hist.Entries))
	if n := len(hist.Entries); n >= 2 {
		printDelta(stderr, hist.Entries[n-2], hist.Entries[n-1])
	}
	return 0
}

// checkHistory validates that path parses as a history file whose
// entries all carry a label and at least one benchmark with metrics —
// the invariant CI enforces so a botched merge or hand edit of the
// recorded trajectory fails loudly.
func checkHistory(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var hist History
	if err := json.Unmarshal(raw, &hist); err != nil {
		return fmt.Errorf("%s: invalid JSON: %v", path, err)
	}
	if len(hist.Entries) == 0 {
		return fmt.Errorf("%s: history has no entries", path)
	}
	for i, e := range hist.Entries {
		if e.Label == "" {
			return fmt.Errorf("%s: entry %d has no label", path, i)
		}
		if len(e.Benchmarks) == 0 {
			return fmt.Errorf("%s: entry %q has no benchmarks", path, e.Label)
		}
		for _, b := range e.Benchmarks {
			if b.Name == "" || len(b.Metrics) == 0 {
				return fmt.Errorf("%s: entry %q has a benchmark without name or metrics", path, e.Label)
			}
			// The sharded-engine series has a fixed shape: the name is
			// EngineSharded/shards=<positive int> and the recorded
			// metric is jobs/s, the cross-PR throughput ceiling.
			if rest, ok := strings.CutPrefix(b.Name, "EngineSharded/"); ok {
				n, err := strconv.Atoi(strings.TrimPrefix(rest, "shards="))
				if !strings.HasPrefix(rest, "shards=") || err != nil || n < 1 {
					return fmt.Errorf("%s: entry %q: malformed sharded benchmark name %q (want EngineSharded/shards=N)",
						path, e.Label, b.Name)
				}
				if _, ok := b.Metrics["jobs/s"]; !ok {
					return fmt.Errorf("%s: entry %q: %s lacks the jobs/s metric", path, e.Label, b.Name)
				}
			}
			// The daemon fast-path series: PBSDSubmitCancel/mode=
			// incremental|fullscan, recording pairs/s — the cross-PR
			// record of the scheduling-cycle optimization.
			if rest, ok := strings.CutPrefix(b.Name, "PBSDSubmitCancel/"); ok {
				mode := strings.TrimPrefix(rest, "mode=")
				if !strings.HasPrefix(rest, "mode=") || (mode != "incremental" && mode != "fullscan") {
					return fmt.Errorf("%s: entry %q: malformed daemon benchmark name %q (want PBSDSubmitCancel/mode=incremental|fullscan)",
						path, e.Label, b.Name)
				}
				if _, ok := b.Metrics["pairs/s"]; !ok {
					return fmt.Errorf("%s: entry %q: %s lacks the pairs/s metric", path, e.Label, b.Name)
				}
			}
			// The batched middleware series: ClientBatch/ops=<positive
			// int>, also recording pairs/s.
			if rest, ok := strings.CutPrefix(b.Name, "ClientBatch/"); ok {
				n, err := strconv.Atoi(strings.TrimPrefix(rest, "ops="))
				if !strings.HasPrefix(rest, "ops=") || err != nil || n < 1 {
					return fmt.Errorf("%s: entry %q: malformed batch benchmark name %q (want ClientBatch/ops=N)",
						path, e.Label, b.Name)
				}
				if _, ok := b.Metrics["pairs/s"]; !ok {
					return fmt.Errorf("%s: entry %q: %s lacks the pairs/s metric", path, e.Label, b.Name)
				}
			}
		}
	}
	return nil
}

// printDelta prints the percentage change per (benchmark, metric)
// between two entries, matched by benchmark name; benchmarks present
// in only one entry are skipped.
func printDelta(w io.Writer, prev, cur Entry) {
	old := make(map[string]map[string]float64, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		old[b.Name] = b.Metrics
	}
	fmt.Fprintf(w, "benchjson: delta %q -> %q:\n", prev.Label, cur.Label)
	for _, b := range cur.Benchmarks {
		before, ok := old[b.Name]
		if !ok {
			continue
		}
		units := make([]string, 0, len(b.Metrics))
		for u := range b.Metrics {
			if _, ok := before[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			was, now := before[u], b.Metrics[u]
			if was == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-40s %-10s %14.4g -> %14.4g  %+.1f%%\n",
				b.Name, u, was, now, 100*(now-was)/was)
		}
	}
}

// parseBench parses one benchmark result line:
//
//	BenchmarkEngine/trace=off-8  5  246078321 ns/op  3817436 B/op  70847 allocs/op
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix, if present, from the last segment.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
