package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: redreq
cpu: test
BenchmarkSimulationCore-8   	      10	 100000000 ns/op	        52341 jobs/s
BenchmarkEngine/trace=off-8 	       5	 200000000 ns/op
BenchmarkEngineSharded/shards=2-8 	       3	 150000000 ns/op	       180000 jobs/s
BenchmarkPBSDSubmitCancel/mode=incremental-8 	 1000000	       400 ns/op	     2500000 pairs/s
BenchmarkClientBatch/ops=8-8 	    1000	    350000 ns/op	       22000 pairs/s
PASS
`

func record(t *testing.T, file, label, input string) (stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run([]string{"-label", label, "-out", file}, strings.NewReader(input), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	return out.String(), errb.String()
}

func TestRecordAndDelta(t *testing.T) {
	file := filepath.Join(t.TempDir(), "hist.json")

	stdout, stderr := record(t, file, "before", benchOutput)
	if stdout != benchOutput {
		t.Errorf("stdin not echoed verbatim:\n%s", stdout)
	}
	if strings.Contains(stderr, "delta") {
		t.Errorf("first entry printed a delta:\n%s", stderr)
	}

	// Second entry: SimulationCore halves its time and doubles jobs/s.
	faster := strings.NewReplacer(
		"100000000 ns/op", "50000000 ns/op",
		"52341 jobs/s", "104682 jobs/s",
	).Replace(benchOutput)
	_, stderr = record(t, file, "after", faster)
	if !strings.Contains(stderr, `delta "before" -> "after"`) {
		t.Fatalf("no delta summary:\n%s", stderr)
	}
	for _, want := range []string{"-50.0%", "+100.0%", "+0.0%"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("delta missing %q:\n%s", want, stderr)
		}
	}

	var hist History
	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Entries) != 2 || hist.Entries[0].Label != "before" || hist.Entries[1].Label != "after" {
		t.Fatalf("history entries: %+v", hist.Entries)
	}
	if n := len(hist.Entries[0].Benchmarks); n != 5 {
		t.Errorf("entry recorded %d benchmarks, want 5", n)
	}
	if v := hist.Entries[1].Benchmarks[0].Metrics["jobs/s"]; v != 104682 {
		t.Errorf("jobs/s = %v, want 104682", v)
	}
}

func TestCheckMode(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	record(t, good, "base", benchOutput)

	var out, errb bytes.Buffer
	if code := run([]string{"-check", good}, nil, &out, &errb); code != 0 {
		t.Errorf("valid file: exit %d, stderr:\n%s", code, errb.String())
	}

	bad := map[string]string{
		"garbage.json": "not json at all",
		"empty.json":   `{"entries": []}`,
		"nolabel.json": `{"entries": [{"benchmarks": [{"name": "X", "metrics": {"ns/op": 1}}]}]}`,
		"nobench.json": `{"entries": [{"label": "x"}]}`,
		// The sharded series has a pinned shape: shards=N in the name
		// and a jobs/s metric.
		"shardname.json": `{"entries": [{"label": "x", "benchmarks": [{"name": "EngineSharded/shards=zero", "metrics": {"jobs/s": 1}}]}]}`,
		"shardjobs.json": `{"entries": [{"label": "x", "benchmarks": [{"name": "EngineSharded/shards=2", "metrics": {"ns/op": 1}}]}]}`,
		// The daemon fast-path series: mode=incremental|fullscan and a
		// pairs/s metric.
		"pbsdmode.json":  `{"entries": [{"label": "x", "benchmarks": [{"name": "PBSDSubmitCancel/mode=turbo", "metrics": {"pairs/s": 1}}]}]}`,
		"pbsdpairs.json": `{"entries": [{"label": "x", "benchmarks": [{"name": "PBSDSubmitCancel/mode=incremental", "metrics": {"ns/op": 1}}]}]}`,
		// The batched middleware series: ops=N and a pairs/s metric.
		"batchops.json":   `{"entries": [{"label": "x", "benchmarks": [{"name": "ClientBatch/ops=none", "metrics": {"pairs/s": 1}}]}]}`,
		"batchpairs.json": `{"entries": [{"label": "x", "benchmarks": [{"name": "ClientBatch/ops=8", "metrics": {"ns/op": 1}}]}]}`,
	}
	for name, content := range bad {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		errb.Reset()
		if code := run([]string{"-check", path}, nil, &out, &errb); code != 1 {
			t.Errorf("%s: exit %d, want 1 (stderr: %s)", name, code, errb.String())
		}
	}

	errb.Reset()
	if code := run([]string{"-check", filepath.Join(dir, "missing.json")}, nil, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

func TestNoBenchmarksOnStdin(t *testing.T) {
	var out, errb bytes.Buffer
	file := filepath.Join(t.TempDir(), "hist.json")
	code := run([]string{"-out", file}, strings.NewReader("PASS\nok\n"), &out, &errb)
	if code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if _, err := os.Stat(file); !os.IsNotExist(err) {
		t.Error("history file written despite empty input")
	}
}
