module redreq

go 1.22
