GO ?= go

# Label recorded with `make bench` entries in BENCH_core.json
# (override: make bench BENCH_LABEL=pr3-after).
BENCH_LABEL ?= dev

.PHONY: build test check bench bench-all fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full verification gate: static analysis, the whole test
# suite under the race detector, and a one-iteration benchmark smoke so
# bench code cannot silently rot.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run=NONE -bench=Engine -benchtime=1x .

# bench runs the core simulator benchmarks and appends the numbers to
# BENCH_core.json (jobs/s from BenchmarkSimulationCore, ns/op and
# allocs/op from BenchmarkEngine). See README "Performance".
bench:
	$(GO) test -run=NONE -bench='SimulationCore$$|Engine' -benchmem . \
		| $(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' -out BENCH_core.json

# bench-all runs every benchmark (per-table/figure experiment drivers,
# middleware, daemon, trace parsing) without recording history.
bench-all:
	$(GO) test -bench=. -benchmem

fmt:
	gofmt -l -w .
