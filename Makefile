GO ?= go

# Label recorded with `make bench` entries in BENCH_core.json
# (override: make bench BENCH_LABEL=pr3-after).
BENCH_LABEL ?= dev

.PHONY: build test check bench bench-all fmt results validate overload-smoke overload-smoke-fast

# Experiments recorded in results_full.txt: the registry minus sec4,
# whose wall-clock measurements are not deterministic.
RESULTS_EXPERIMENTS = fig12,table1,table2,fig3,table3,fig4,table4,qgrowth,inflate,loadsweep,ablations,multiq,moldable,faults,validate,trace,routing

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full verification gate: static analysis, the whole test
# suite under the race detector, and a one-iteration benchmark smoke so
# bench code cannot silently rot. staticcheck runs when installed and
# is skipped (with a note) otherwise — CI always installs it, so local
# environments without it still get the rest of the gate.
check:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi
	$(GO) test -race ./...
	$(GO) test -run=NONE -bench=Engine -benchtime=1x .

# bench runs the core simulator benchmarks and appends the numbers to
# BENCH_core.json (jobs/s from BenchmarkSimulationCore, ns/op and
# allocs/op from BenchmarkEngine, whole-registry wall-clock from
# BenchmarkRegistryQuick, daemon fast-vs-legacy pairs/s from
# BenchmarkPBSDSubmitCancel, batched middleware pairs/s from
# BenchmarkClientBatch), then prints the delta against the previous
# entry. See README "Performance".
bench:
	$(GO) test -run=NONE -bench='SimulationCore$$|Engine|RegistryQuick$$|Routing|PBSDSubmitCancel|ClientBatch' -benchmem . \
		| $(GO) run ./cmd/benchjson -label '$(BENCH_LABEL)' -out BENCH_core.json

# bench-all runs every benchmark (per-table/figure experiment drivers,
# middleware, daemon, trace parsing) without recording history.
bench-all:
	$(GO) test -bench=. -benchmem

fmt:
	gofmt -l -w .

# validate runs the validation harness: the invariant suite (causality,
# liveness, capacity, work conservation, CPU-time ledger, determinism)
# over representative scenarios, the analytical queueing twins, and the
# SWF trace replay. Exits non-zero on any violation; record confirmed
# violations in FINDINGS.md.
validate:
	$(GO) run ./cmd/redsim -run validate,trace -q

# overload-smoke drives the overload experiment — the real daemon +
# middleware stack behind the fault proxy, open-loop load, admission
# control, and the breaker chaos window — at a single low rate under
# the race detector. Wall-clock and nondeterministic (like sec4), so
# it is a liveness/race gate, not a results snapshot; finishes in a
# few seconds.
overload-smoke:
	$(GO) run -race ./cmd/redsim -run overload -sweep 50 -stack legacy -q

# overload-smoke-fast is the same gate on the optimized stack only:
# incremental scheduling cycles, group-committed journal, pooled
# batched client. Exercises the fast path's concurrency under -race.
overload-smoke-fast:
	$(GO) run -race ./cmd/redsim -run overload -sweep 50 -stack fast -q

# results regenerates results_full.txt through the registry dispatcher
# (deterministic: fixed seeds, timing on stderr) and diffs it against
# the committed file. An unchanged file is left alone; a drifted one is
# replaced so the diff can be reviewed and committed.
results:
	$(GO) run ./cmd/redsim -run $(RESULTS_EXPERIMENTS) -q > results_full.txt.tmp
	@if diff -u results_full.txt results_full.txt.tmp; then \
		echo "results_full.txt: up to date"; rm results_full.txt.tmp; \
	else \
		mv results_full.txt.tmp results_full.txt; \
		echo "results_full.txt updated — review the diff above and commit"; \
	fi
