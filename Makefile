GO ?= go

.PHONY: build test check bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full verification gate: static analysis plus the whole
# test suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

fmt:
	gofmt -l -w .
